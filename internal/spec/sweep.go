package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"dwarn/internal/core"
)

// DefaultMaxCells bounds sweep expansion when the caller does not
// choose a limit: large enough for the paper's full grid many times
// over, small enough that a hostile spec cannot fan out unbounded work.
const DefaultMaxCells = 4096

// ErrTooManyCells reports a sweep whose cartesian product exceeds the
// expansion limit. Servers map it to a 4xx.
var ErrTooManyCells = errors.New("spec: sweep expands to too many cells")

// PolicyAxis is one policy on a sweep's policy axis: a registry name
// plus an optional parameter grid. Each parameter maps to the list of
// values to sweep; the axis expands into the cartesian product over its
// parameters (parameters in sorted name order, values in listed order).
type PolicyAxis struct {
	Name   string             `json:"name"`
	Params map[string][]int64 `json:"params,omitempty"`
}

// expand returns the axis's policy references in deterministic order.
func (a PolicyAxis) expand() ([]Policy, error) {
	if _, err := core.CanonicalParams(a.Name, nil); err != nil {
		return nil, err
	}
	if len(a.Params) == 0 {
		return []Policy{{Name: a.Name}}, nil
	}
	keys := make([]string, 0, len(a.Params))
	for k := range a.Params {
		if len(a.Params[k]) == 0 {
			return nil, fmt.Errorf("spec: policy %q parameter %q has an empty value list", a.Name, k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := []Policy{{Name: a.Name, Params: map[string]int64{}}}
	for _, k := range keys {
		next := make([]Policy, 0, len(out)*len(a.Params[k]))
		for _, p := range out {
			for _, v := range a.Params[k] {
				params := make(map[string]int64, len(p.Params)+1)
				for pk, pv := range p.Params {
					params[pk] = pv
				}
				params[k] = v
				next = append(next, Policy{Name: a.Name, Params: params})
			}
		}
		out = next
	}
	// Validate each combination once here so Expand reports parameter
	// errors against the axis, not against some expanded cell.
	for _, p := range out {
		if _, err := core.CanonicalParams(p.Name, p.Params); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepSpec is the declarative grid form: every axis is a list, and the
// sweep is the cartesian product machines × policies (with their
// parameter grids) × workloads × seeds. Zero-valued axes take the
// paper's defaults (baseline machine, the six paper policies, one
// default seed); workloads must be given.
type SweepSpec struct {
	// Version is the spec schema version; 0 means current.
	Version int `json:"version,omitempty"`
	// Machines defaults to [{name: "baseline"}].
	Machines []Machine `json:"machines,omitempty"`
	// Policies defaults to the six paper policies.
	Policies []PolicyAxis `json:"policies,omitempty"`
	// Workloads is the workload axis; required.
	Workloads []Workload `json:"workloads,omitempty"`
	// Seeds is the replication axis: one cell per seed (0 = the default
	// seed). Defaults to a single default-seed replication.
	Seeds []uint64 `json:"seeds,omitempty"`
	// WarmupCycles and MeasureCycles apply to every cell (0 = defaults).
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	// Baselines adds relative-IPC metrics to every cell.
	Baselines bool `json:"baselines,omitempty"`
	// Timeline requests per-interval timeline sampling in every cell
	// (a metrics option; cell fingerprints are unchanged).
	Timeline *TimelineSpec `json:"timeline,omitempty"`
}

// Expand materializes the sweep into its RunSpec cells, deterministic
// order: machine-major, then policy (axes in listed order, parameter
// grids expanded within each), then workload, then seed. Every cell is
// statically validated before any is returned. maxCells bounds the
// product (<= 0 means DefaultMaxCells); exceeding it returns an error
// wrapping ErrTooManyCells.
func (s *SweepSpec) Expand(maxCells int) ([]RunSpec, error) {
	if maxCells <= 0 {
		maxCells = DefaultMaxCells
	}
	if s.Version != 0 && s.Version != Version {
		return nil, fmt.Errorf("spec: unsupported spec version %d (current: %d)", s.Version, Version)
	}

	machines := s.Machines
	if len(machines) == 0 {
		machines = []Machine{{Name: "baseline"}}
	}
	axes := s.Policies
	if len(axes) == 0 {
		for _, p := range core.PaperPolicies() {
			axes = append(axes, PolicyAxis{Name: p})
		}
	}
	var policies []Policy
	for _, a := range axes {
		ps, err := a.expand()
		if err != nil {
			return nil, err
		}
		policies = append(policies, ps...)
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("spec: sweep needs at least one workload")
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}

	total := len(machines) * len(policies)
	if total > maxCells || total*len(s.Workloads) > maxCells || total*len(s.Workloads)*len(seeds) > maxCells {
		return nil, fmt.Errorf("%w: %d machines × %d policies × %d workloads × %d seeds exceeds the limit of %d cells",
			ErrTooManyCells, len(machines), len(policies), len(s.Workloads), len(seeds), maxCells)
	}

	cells := make([]RunSpec, 0, total*len(s.Workloads)*len(seeds))
	for i := range machines {
		m := machines[i]
		for _, p := range policies {
			for _, w := range s.Workloads {
				for _, seed := range seeds {
					cell := RunSpec{
						Machine:       &m,
						Policy:        p,
						Workload:      w,
						Seed:          seed,
						WarmupCycles:  s.WarmupCycles,
						MeasureCycles: s.MeasureCycles,
						Baselines:     s.Baselines,
						Timeline:      s.Timeline,
					}
					if err := cell.Validate(); err != nil {
						return nil, fmt.Errorf("spec: sweep cell %s/%s/%s: %w", machineID(&m), p.ID(), w.ID(), err)
					}
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells, nil
}

// machineID renders a machine's display identity for error messages.
func machineID(m *Machine) string {
	switch {
	case m == nil || (m.Name == "" && m.Config == nil):
		return "baseline"
	case m.Name != "":
		return m.Name
	default:
		return m.Config.Name
	}
}

// File is the on-disk spec envelope: exactly one of Run or Sweep. It
// exists so a single -spec flag can carry either shape unambiguously.
type File struct {
	Run   *RunSpec   `json:"run,omitempty"`
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// Load strictly decodes a spec file: unknown fields are errors, and
// exactly one of "run" and "sweep" must be present.
func Load(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: bad spec file: %w", err)
	}
	if (f.Run == nil) == (f.Sweep == nil) {
		return nil, fmt.Errorf(`spec: spec file must set exactly one of "run" and "sweep"`)
	}
	return &f, nil
}

// LoadFile reads a spec envelope from a path.
func LoadFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := Load(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Runs returns the file's cells: the single run, or the sweep expanded
// under maxCells.
func (f *File) Runs(maxCells int) ([]RunSpec, error) {
	if f.Run != nil {
		return []RunSpec{*f.Run}, nil
	}
	return f.Sweep.Expand(maxCells)
}
