package spec

import (
	"errors"
	"strings"
	"testing"

	"dwarn/internal/config"
)

func mustResolve(t *testing.T, s RunSpec) *Resolved {
	t.Helper()
	res, err := s.Resolve(nil)
	if err != nil {
		t.Fatalf("Resolve(%+v): %v", s, err)
	}
	return res
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]RunSpec{
		"no policy":        {Workload: Workload{Name: "4-MIX"}},
		"unknown policy":   {Policy: Policy{Name: "nonesuch"}, Workload: Workload{Name: "4-MIX"}},
		"unknown param":    {Policy: Policy{Name: "dwarn", Params: map[string]int64{"nope": 1}}, Workload: Workload{Name: "4-MIX"}},
		"param low":        {Policy: Policy{Name: "dwarn", Params: map[string]int64{"warn": 0}}, Workload: Workload{Name: "4-MIX"}},
		"param high":       {Policy: Policy{Name: "stall", Params: map[string]int64{"threshold": 1 << 40}}, Workload: Workload{Name: "4-MIX"}},
		"icount param":     {Policy: Policy{Name: "icount", Params: map[string]int64{"threshold": 1}}, Workload: Workload{Name: "4-MIX"}},
		"no workload":      {Policy: Policy{Name: "dwarn"}},
		"two workloads":    {Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX", Solo: "gzip"}},
		"unknown workload": {Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "nonesuch"}},
		"unknown solo":     {Policy: Policy{Name: "dwarn"}, Workload: Workload{Solo: "nonesuch"}},
		"unknown bench":    {Policy: Policy{Name: "dwarn"}, Workload: Workload{Benchmarks: []string{"nonesuch"}}},
		"unknown machine":  {Machine: &Machine{Name: "nonesuch"}, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"bad version":      {Version: 99, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"negative cycles":  {Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}, WarmupCycles: -1},
		"too many threads": {Machine: &Machine{Name: "small"}, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "8-MEM"}},
		"trace baselines":  {Policy: Policy{Name: "dwarn"}, Workload: Workload{Trace: "abc12345"}, Baselines: true},
		"bad overrides": {Machine: &Machine{Name: "baseline", Overrides: []byte(`{"NoSuchField": 1}`)},
			Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"invalid override value": {Machine: &Machine{Name: "baseline", Overrides: []byte(`{"MemLatency": -5}`)},
			Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"config and overrides": {Machine: &Machine{Config: config.Baseline(), Overrides: []byte(`{"MemLatency": 50}`)},
			Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"name config mismatch": {Machine: &Machine{Name: "deep", Config: config.Baseline()},
			Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}

func TestResolveDefaults(t *testing.T) {
	res := mustResolve(t, RunSpec{Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}})
	c := res.Spec
	if c.Version != Version {
		t.Errorf("canonical version %d", c.Version)
	}
	if c.Machine == nil || c.Machine.Name != "baseline" || c.Machine.Config == nil {
		t.Errorf("canonical machine %+v", c.Machine)
	}
	if c.Seed != 42 || c.WarmupCycles != 20_000 || c.MeasureCycles != 100_000 {
		t.Errorf("canonical protocol %d/%d/%d", c.Seed, c.WarmupCycles, c.MeasureCycles)
	}
	if got := c.Policy.Params["warn"]; got != 1 {
		t.Errorf("canonical dwarn params %v", c.Policy.Params)
	}
	if res.Options.Config == nil || res.Options.Workload.Name != "4-MIX" {
		t.Errorf("options %+v", res.Options)
	}
	if res.Fingerprint == "" {
		t.Error("empty fingerprint")
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	specs := []RunSpec{
		{Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		{Policy: Policy{Name: "stall", Params: map[string]int64{"threshold": 25}}, Workload: Workload{Solo: "mcf"}, Seed: 7},
		{Machine: &Machine{Name: "deep"}, Policy: Policy{Name: "flush"}, Workload: Workload{Benchmarks: []string{"gzip", "mcf"}}},
	}
	for _, s := range specs {
		first := mustResolve(t, s)
		second := mustResolve(t, first.Spec)
		if first.Fingerprint != second.Fingerprint {
			t.Errorf("canonicalization not idempotent for %+v: %s vs %s", s, first.Fingerprint, second.Fingerprint)
		}
	}
}

// TestFingerprintEquivalences: specs that describe the same simulation
// must share one identity, however they spell it.
func TestFingerprintEquivalences(t *testing.T) {
	base := mustResolve(t, RunSpec{Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}})

	equivalent := map[string]RunSpec{
		"explicit version":  {Version: 1, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"explicit machine":  {Machine: &Machine{Name: "baseline"}, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"explicit defaults": {Policy: Policy{Name: "dwarn", Params: map[string]int64{"warn": 1}}, Workload: Workload{Name: "4-MIX"}, Seed: 42, WarmupCycles: 20_000, MeasureCycles: 100_000},
		"noop override":     {Machine: &Machine{Name: "baseline", Overrides: []byte(`{"MemLatency": 100}`)}, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"inline config":     {Machine: &Machine{Config: config.Baseline()}, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
	}
	for name, s := range equivalent {
		if got := mustResolve(t, s).Fingerprint; got != base.Fingerprint {
			t.Errorf("%s: fingerprint %s, want %s", name, got, base.Fingerprint)
		}
	}

	distinct := map[string]RunSpec{
		"warn=2":        {Policy: Policy{Name: "dwarn", Params: map[string]int64{"warn": 2}}, Workload: Workload{Name: "4-MIX"}},
		"other policy":  {Policy: Policy{Name: "icount"}, Workload: Workload{Name: "4-MIX"}},
		"other machine": {Machine: &Machine{Name: "deep"}, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"real override": {Machine: &Machine{Name: "baseline", Overrides: []byte(`{"MemLatency": 200}`)}, Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}},
		"other seed":    {Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}, Seed: 9},
		"other cycles":  {Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}, MeasureCycles: 50_000},
		"custom vs named": {Policy: Policy{Name: "dwarn"},
			Workload: Workload{Benchmarks: []string{"gzip", "twolf", "bzip2", "mcf"}}},
	}
	seen := map[string]string{base.Fingerprint: "base"}
	for name, s := range distinct {
		got := mustResolve(t, s).Fingerprint
		if prev, dup := seen[got]; dup {
			t.Errorf("%s: fingerprint collides with %s", name, prev)
		}
		seen[got] = name
	}

	// Baselines is a metrics flag over the same simulation.
	withBaselines := RunSpec{Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}, Baselines: true}
	if got := mustResolve(t, withBaselines).Fingerprint; got != base.Fingerprint {
		t.Error("baselines flag changed the fingerprint")
	}
}

func TestSweepExpandDeterministic(t *testing.T) {
	s := SweepSpec{
		Machines: []Machine{{Name: "baseline"}, {Name: "deep"}},
		Policies: []PolicyAxis{
			{Name: "icount"},
			{Name: "dwarn", Params: map[string][]int64{"warn": {1, 2, 4}}},
		},
		Workloads: []Workload{{Name: "2-MIX"}, {Name: "2-MEM"}},
		Seeds:     []uint64{0, 7},
	}
	cells, err := s.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4 * 2 * 2; len(cells) != want {
		t.Fatalf("expanded to %d cells, want %d", len(cells), want)
	}
	// Machine-major, then policy, then workload, then seed.
	if cells[0].Machine.Name != "baseline" || cells[len(cells)-1].Machine.Name != "deep" {
		t.Errorf("machine order wrong: %s ... %s", cells[0].Machine.Name, cells[len(cells)-1].Machine.Name)
	}
	if id := cells[0].Policy.ID(); id != "icount" {
		t.Errorf("first policy %s", id)
	}
	if id := cells[4].Policy.ID(); id != "dwarn" { // warn=1 is the default
		t.Errorf("fifth policy %s", id)
	}
	if id := cells[8].Policy.ID(); id != "dwarn(warn=2)" {
		t.Errorf("ninth policy %s", id)
	}
	if cells[0].Seed != 0 || cells[1].Seed != 7 {
		t.Errorf("seed order %d, %d", cells[0].Seed, cells[1].Seed)
	}

	again, err := s.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		a := mustResolve(t, cells[i]).Fingerprint
		b := mustResolve(t, again[i]).Fingerprint
		if a != b {
			t.Fatalf("cell %d not deterministic", i)
		}
	}
}

func TestSweepDefaults(t *testing.T) {
	s := SweepSpec{Workloads: []Workload{{Name: "4-MIX"}}}
	cells, err := s.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("default sweep has %d cells, want the 6 paper policies", len(cells))
	}
}

func TestSweepExpandBounded(t *testing.T) {
	s := SweepSpec{
		Policies:  []PolicyAxis{{Name: "dwarn", Params: map[string][]int64{"warn": {1, 2, 3, 4}}}},
		Workloads: []Workload{{Name: "2-MIX"}},
	}
	if _, err := s.Expand(3); !errors.Is(err, ErrTooManyCells) {
		t.Fatalf("Expand(3) = %v, want ErrTooManyCells", err)
	}
	if cells, err := s.Expand(4); err != nil || len(cells) != 4 {
		t.Fatalf("Expand(4) = %d cells, %v", len(cells), err)
	}

	huge := SweepSpec{
		Seeds:     make([]uint64, 10_000),
		Workloads: []Workload{{Name: "2-MIX"}},
	}
	if _, err := huge.Expand(0); !errors.Is(err, ErrTooManyCells) {
		t.Fatalf("huge sweep: %v, want ErrTooManyCells", err)
	}
}

func TestSweepExpandRejects(t *testing.T) {
	cases := map[string]SweepSpec{
		"no workloads":     {},
		"unknown policy":   {Policies: []PolicyAxis{{Name: "nonesuch"}}, Workloads: []Workload{{Name: "2-MIX"}}},
		"unknown param":    {Policies: []PolicyAxis{{Name: "dwarn", Params: map[string][]int64{"nope": {1}}}}, Workloads: []Workload{{Name: "2-MIX"}}},
		"empty value list": {Policies: []PolicyAxis{{Name: "dwarn", Params: map[string][]int64{"warn": {}}}}, Workloads: []Workload{{Name: "2-MIX"}}},
		"bad cell":         {Workloads: []Workload{{Name: "nonesuch"}}},
		"bad version":      {Version: 2, Workloads: []Workload{{Name: "2-MIX"}}},
	}
	for name, s := range cases {
		if _, err := s.Expand(0); err == nil {
			t.Errorf("%s: Expand accepted %+v", name, s)
		}
	}
}

func TestLoadEnvelope(t *testing.T) {
	f, err := Load(strings.NewReader(`{"run": {"policy": {"name": "dwarn"}, "workload": {"name": "4-MIX"}}}`))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := f.Runs(0)
	if err != nil || len(runs) != 1 {
		t.Fatalf("Runs = %d, %v", len(runs), err)
	}

	f, err = Load(strings.NewReader(`{"sweep": {"workloads": [{"name": "4-MIX"}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if runs, err = f.Runs(0); err != nil || len(runs) != 6 {
		t.Fatalf("sweep Runs = %d, %v", len(runs), err)
	}

	for name, in := range map[string]string{
		"empty":         `{}`,
		"both":          `{"run": {"policy": {"name": "dwarn"}, "workload": {"name": "4-MIX"}}, "sweep": {"workloads": [{"name": "4-MIX"}]}}`,
		"unknown field": `{"run": {"policy": {"name": "dwarn"}, "workload": {"name": "4-MIX"}}, "extra": 1}`,
		"junk":          `not json`,
	} {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load accepted %s", name, in)
		}
	}
}

func TestWorkloadID(t *testing.T) {
	cases := map[string]Workload{
		"4-MIX":           {Name: "4-MIX"},
		"solo-gzip":       {Solo: "gzip"},
		"custom:gzip+mcf": {Benchmarks: []string{"gzip", "mcf"}},
		"trace:abcd":      {Trace: "abcd"},
	}
	for want, w := range cases {
		if got := w.ID(); got != want {
			t.Errorf("ID(%+v) = %q, want %q", w, got, want)
		}
	}
}
