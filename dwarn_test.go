package dwarn_test

import (
	"testing"

	"dwarn"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	wl, err := dwarn.Workload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	res, err := dwarn.Run(dwarn.Options{
		Policy:        "dwarn",
		Workload:      wl,
		WarmupCycles:  8000,
		MeasureCycles: 15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput through public API")
	}
}

func TestPublicMachines(t *testing.T) {
	for _, p := range []*dwarn.Processor{dwarn.Baseline(), dwarn.Small(), dwarn.Deep()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPublicLists(t *testing.T) {
	if len(dwarn.Benchmarks()) != 12 {
		t.Error("benchmark list wrong")
	}
	if len(dwarn.Workloads()) != 12 {
		t.Error("workload list wrong")
	}
	if len(dwarn.PaperPolicies()) != 6 {
		t.Error("paper policy list wrong")
	}
	found := false
	for _, p := range dwarn.Policies() {
		if p == "dwarn" {
			found = true
		}
	}
	if !found {
		t.Error("dwarn missing from policies")
	}
}

func TestPublicMetrics(t *testing.T) {
	if dwarn.Throughput([]float64{1, 2}) != 3 {
		t.Error("throughput")
	}
	if dwarn.Hmean([]float64{1, 1}) != 1 {
		t.Error("hmean")
	}
	if dwarn.WeightedSpeedup([]float64{1, 3}) != 2 {
		t.Error("wspeedup")
	}
	rel, err := dwarn.RelativeIPCs([]float64{1}, []float64{2})
	if err != nil || rel[0] != 0.5 {
		t.Error("relative IPCs")
	}
}

func TestCustomBenchmarkRegistration(t *testing.T) {
	p, err := dwarn.Benchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	custom := *p
	custom.Name = "api-custom"
	custom.L1MissRate, custom.L2MissRate = 0.10, 0.05
	if err := dwarn.RegisterBenchmark(&custom); err != nil {
		t.Fatal(err)
	}
	res, err := dwarn.Run(dwarn.Options{
		Policy: "icount",
		Workload: dwarn.WorkloadSpec{
			Name: "custom", Threads: 1, Benchmarks: []string{"api-custom"},
		},
		WarmupCycles:  8000,
		MeasureCycles: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[0].IPC <= 0 {
		t.Error("custom benchmark produced no work")
	}
}

func TestRunSolo(t *testing.T) {
	res, err := dwarn.RunSolo(nil, "bzip2", 42, 8000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[0].IPC <= 0 {
		t.Error("solo run empty")
	}
}
