module dwarn

go 1.24
