# Developer entry points. Everything here is plain go tool invocations;
# the Makefile just names the common ones.

.PHONY: build test race bench bench-simcore bench-sweep bench-fabric bench-service bench-ckpt smoke-ckpt chaos-service alloc-guard

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Full benchmark sweep, one iteration each (regression smoke).
bench:
	go test -bench=. -benchtime=1x ./...

# Cycle-engine perf trajectory: runs BenchmarkSimulatorCycleRate and
# records ns/cycle, uops/sec, and allocs/cycle to BENCH_simcore.json.
bench-simcore:
	sh scripts/bench_simcore.sh

# Sweep-executor perf trajectory: cells/sec at 1/2/4/8 workers over a
# 64-cell grid, recorded to BENCH_sweep.json.
bench-sweep:
	sh scripts/bench_sweep.sh

# Distributed-fabric perf trajectory: a real coordinator plus 1/2/4
# `dwarnd -worker` processes over the 72-cell parallel grid, recorded
# to BENCH_fabric.json.
bench-fabric:
	sh scripts/bench_fabric.sh

# Service-level perf trajectory: end-to-end runs/sec and p99
# submit→done latency against a real dwarnd at 1/4/8 concurrent
# clients, cold (every run simulated) and hot (cache-served), recorded
# to BENCH_service.json.
bench-service:
	sh scripts/bench_service.sh

# Checkpoint/fork engine perf trajectory: the 72-cell parallel grid
# with and without checkpointing, recorded to BENCH_ckpt.json.
bench-ckpt:
	sh scripts/bench_ckpt.sh

# Checkpoint/fork engine correctness smoke: one warmup per group and
# digests bit-identical to a serial no-checkpoint run.
smoke-ckpt:
	sh scripts/smoke_ckpt.sh

# Crash/fault drills: journal crash recovery, torn-tail truncation, and
# store-write-error absorption against a real dwarnd via DWARN_CHAOS.
chaos-service:
	sh scripts/chaos_service.sh

# Zero-allocation steady-state guard for the cycle engine.
alloc-guard:
	go test ./internal/sim -run TestStepZeroAllocSteadyState -v
