# Developer entry points. Everything here is plain go tool invocations;
# the Makefile just names the common ones.

.PHONY: build test race bench bench-simcore alloc-guard

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Full benchmark sweep, one iteration each (regression smoke).
bench:
	go test -bench=. -benchtime=1x ./...

# Cycle-engine perf trajectory: runs BenchmarkSimulatorCycleRate and
# records ns/cycle, uops/sec, and allocs/cycle to BENCH_simcore.json.
bench-simcore:
	sh scripts/bench_simcore.sh

# Zero-allocation steady-state guard for the cycle engine.
alloc-guard:
	go test ./internal/sim -run TestStepZeroAllocSteadyState -v
