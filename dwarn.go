// Package dwarn is a cycle-level simultaneous multithreading (SMT)
// processor simulator built to reproduce Cazorla, Ramirez, Valero and
// Fernández, "DCache Warn: an I-Fetch Policy to Increase SMT
// Efficiency" (IPDPS 2004).
//
// The library models an 8-wide out-of-order SMT core in the SMTSIM
// tradition — ICOUNT-style fetch, shared issue queues and physical
// registers, per-thread reorder buffers, gshare/BTB/RAS prediction with
// wrong-path execution, and a 64KB/64KB/512KB cache hierarchy — driven
// by synthetic SPECint2000 workloads calibrated to the paper's Table
// 2(a). On top of it sit the six instruction-fetch policies of the
// paper's evaluation: ICOUNT, STALL, FLUSH, DG, PDG, and the paper's
// contribution, DWarn.
//
// Quick start:
//
//	wl, _ := dwarn.Workload("4-MIX")
//	res, err := dwarn.Run(dwarn.Options{Policy: "dwarn", Workload: wl})
//	if err != nil { ... }
//	fmt.Println(res.Throughput)
//
// The cmd/experiments tool regenerates every table and figure of the
// paper; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// measured-vs-paper results.
package dwarn

import (
	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/sim"
	"dwarn/internal/stats"
	"dwarn/internal/workload"
)

// Options selects a simulation; it mirrors the internal sim.Options.
type Options = sim.Options

// Result is a finished simulation's measurements.
type Result = sim.Result

// ThreadResult is one thread's measurements within a Result.
type ThreadResult = sim.ThreadResult

// Processor is a machine description.
type Processor = config.Processor

// Profile is a synthetic benchmark description.
type Profile = workload.Profile

// WorkloadSpec is a multiprogrammed workload.
type WorkloadSpec = workload.Workload

// Run executes one simulation: machine × fetch policy × workload.
func Run(opts Options) (*Result, error) { return sim.Run(opts) }

// RunSolo measures one benchmark alone under ICOUNT (the relative-IPC
// baseline). cfg may be nil for the baseline machine.
func RunSolo(cfg *Processor, bench string, seed uint64, warmup, measure int64) (*Result, error) {
	return sim.RunSolo(cfg, bench, seed, warmup, measure)
}

// Baseline returns the paper's Table 3 machine: 8-wide, 9-stage,
// ICOUNT 2.8 fetch.
func Baseline() *Processor { return config.Baseline() }

// Small returns the paper's §6 less aggressive machine: 4-wide,
// 4-context, 1.4 fetch.
func Small() *Processor { return config.Small() }

// Deep returns the paper's §6 deeper machine: 16 stages, 64-entry
// queues, doubled memory latency.
func Deep() *Processor { return config.Deep() }

// Policies returns the registered fetch policy names.
func Policies() []string { return core.Policies() }

// PaperPolicies returns the six policies of the paper's evaluation in
// figure order: icount, stall, flush, dg, pdg, dwarn.
func PaperPolicies() []string { return core.PaperPolicies() }

// Benchmarks returns the twelve calibrated SPECint2000 benchmark names.
func Benchmarks() []string { return workload.Names() }

// Benchmark returns the calibrated profile for a SPECint2000 name.
func Benchmark(name string) (*Profile, error) { return workload.Get(name) }

// RegisterBenchmark adds or replaces a synthetic benchmark profile,
// which can then be used in custom workloads.
func RegisterBenchmark(p *Profile) error { return workload.Register(p) }

// Workload returns one of the paper's Table 2(b) workloads by name
// (e.g. "4-MIX").
func Workload(name string) (WorkloadSpec, error) { return workload.GetWorkload(name) }

// Workloads returns all twelve Table 2(b) workloads in paper order.
func Workloads() []WorkloadSpec { return workload.Workloads() }

// Throughput sums per-thread IPCs (the paper's first metric).
func Throughput(ipcs []float64) float64 { return stats.Throughput(ipcs) }

// Hmean is the harmonic mean of relative IPCs (the paper's
// throughput-fairness metric, after Luo et al.).
func Hmean(rel []float64) float64 { return stats.Hmean(rel) }

// WeightedSpeedup is the arithmetic mean of relative IPCs.
func WeightedSpeedup(rel []float64) float64 { return stats.WeightedSpeedup(rel) }

// RelativeIPCs divides per-thread SMT IPCs by their solo baselines.
func RelativeIPCs(smt, solo []float64) ([]float64, error) { return stats.RelativeIPCs(smt, solo) }
