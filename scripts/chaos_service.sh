#!/bin/sh
# chaos_service.sh — crash/fault drills against a real dwarnd, driven by
# the DWARN_CHAOS injection seam (see internal/chaos).
#
# Three drills, each a full process lifecycle with assertions:
#
#   1. crash-recovery: DWARN_CHAOS=exit:sweep.journal.appended kills the
#      server (exit 137, like kill -9) immediately after a sweep's
#      submit record is durably journaled and before any cell reaches
#      the executor — the worst-case crash point. A restart on the same
#      -store must resume the sweep under its original id, flag it
#      recovered, and run it to done.
#   2. torn-tail: DWARN_CHAOS=torn:journal.append makes every journal
#      append land as a half-written record. The submission must be
#      refused (500), and a restart must truncate the torn tail and
#      journal normally again.
#   3. store-errors: DWARN_CHAOS=error:store.put drops every durable
#      result write. The sweep must still complete — the store is
#      best-effort by contract — with nothing persisted.
#
# Exits nonzero on the first failed assertion.
#
# Usage:
#   scripts/chaos_service.sh   (or `make chaos-service`)
set -eu

port="${CHAOS_SERVICE_PORT:-18577}"
base="http://127.0.0.1:$port"
sweep='{"policies": ["icount", "dwarn"], "workloads": ["2-MIX"],
        "warmup_cycles": 2000, "measure_cycles": 5000}'

work="$(mktemp -d)"
pids=""
cleanup() {
    [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "chaos_service: building dwarnd" >&2
go build -o "$work/dwarnd" ./cmd/dwarnd

wait_http() {
    i=0
    until curl -sf "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "chaos_service: $1 never came up" >&2; exit 1; }
        sleep 0.1
    done
}

wait_sweep_done() { # $1 = sweep id
    i=0
    while :; do
        state="$(curl -sf "$base/v2/sweeps/$1" | jq -r .state)"
        [ "$state" = done ] && return 0
        [ "$state" = running ] || { echo "chaos_service: sweep $1 ended $state" >&2; exit 1; }
        i=$((i + 1))
        [ "$i" -gt 300 ] && { echo "chaos_service: sweep $1 never finished" >&2; exit 1; }
        sleep 0.1
    done
}

# --- drill 1: crash between journal append and executor submit --------
echo "chaos_service: drill 1: crash after submit record, recover on restart" >&2
store="$work/store1"
DWARN_CHAOS=exit:sweep.journal.appended \
    "$work/dwarnd" -addr "127.0.0.1:$port" -store "$store" -log-level error &
crashpid=$!
wait_http "$base/healthz"
# The server dies mid-request; the submit response never arrives.
curl -s -X POST "$base/v1/sweeps" -d "$sweep" >/dev/null 2>&1 || true
st=0
wait "$crashpid" || st=$?
[ "$st" -eq 137 ] || { echo "chaos_service: FAIL: exit status $st, want 137" >&2; exit 1; }
[ -s "$store/journal.log" ] || { echo "chaos_service: FAIL: no journal written" >&2; exit 1; }

"$work/dwarnd" -addr "127.0.0.1:$port" -store "$store" -log-level error &
srv=$!
wait_http "$base/healthz"
# A fresh server numbers its first sweep 000001; the journaled sweep
# keeps that id across the restart.
status="$(curl -sf "$base/v2/sweeps/sweep-000001")"
echo "$status" | jq -e '.recovered == true' >/dev/null \
    || { echo "chaos_service: FAIL: sweep not flagged recovered: $status" >&2; exit 1; }
wait_sweep_done sweep-000001
curl -sf "$base/v2/sweeps/sweep-000001" \
    | jq -e '.failed == 0 and ([.cells[].fingerprint] | all(length > 0))' >/dev/null \
    || { echo "chaos_service: FAIL: recovered sweep incomplete" >&2; exit 1; }
kill "$srv" 2>/dev/null || true
wait "$srv" 2>/dev/null || true
echo "chaos_service: PASS drill 1 (crash → restart → recovered sweep done)" >&2

# --- drill 2: torn journal tail ---------------------------------------
echo "chaos_service: drill 2: torn append refused, tail truncated on restart" >&2
store="$work/store2"
DWARN_CHAOS=torn:journal.append \
    "$work/dwarnd" -addr "127.0.0.1:$port" -store "$store" -log-level error &
srv=$!
wait_http "$base/healthz"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/sweeps" -d "$sweep")"
[ "$code" = 500 ] || { echo "chaos_service: FAIL: torn append returned $code, want 500" >&2; exit 1; }
[ -s "$store/journal.log" ] || { echo "chaos_service: FAIL: no torn tail on disk" >&2; exit 1; }
kill "$srv" 2>/dev/null || true
wait "$srv" 2>/dev/null || true

"$work/dwarnd" -addr "127.0.0.1:$port" -store "$store" -log-level error &
srv=$!
wait_http "$base/healthz"
id="$(curl -sf -X POST "$base/v1/sweeps" -d "$sweep" | jq -r .id)"
wait_sweep_done "$id"
kill "$srv" 2>/dev/null || true
wait "$srv" 2>/dev/null || true
echo "chaos_service: PASS drill 2 (torn tail truncated, journaling healthy)" >&2

# --- drill 3: store write errors --------------------------------------
echo "chaos_service: drill 3: sweep completes despite store write failures" >&2
store="$work/store3"
DWARN_CHAOS=error:store.put \
    "$work/dwarnd" -addr "127.0.0.1:$port" -store "$store" -log-level error &
srv=$!
wait_http "$base/healthz"
id="$(curl -sf -X POST "$base/v1/sweeps" -d "$sweep" | jq -r .id)"
wait_sweep_done "$id"
# Every durable write was dropped: no result JSON landed in the store.
n="$(ls "$store"/*.json 2>/dev/null | wc -l)"
[ "$n" -eq 0 ] || { echo "chaos_service: FAIL: $n results persisted under error:store.put" >&2; exit 1; }
kill "$srv" 2>/dev/null || true
wait "$srv" 2>/dev/null || true
echo "chaos_service: PASS drill 3 (store errors absorbed, nothing persisted)" >&2

echo "chaos_service: all drills passed"
