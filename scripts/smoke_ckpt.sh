#!/bin/sh
# smoke_ckpt.sh — end-to-end correctness check for the checkpoint/fork
# engine.
#
# Runs the 72-cell examples/specs/parallel-grid.json (6 policies × 3
# workloads × 4 seeds = 12 checkpoint groups) three ways and asserts:
#
#   1. A checkpointed parallel run produces per-cell counter digests
#      bit-identical to a serial run with checkpointing disabled.
#   2. Exactly one warmup executed per (machine, workload, seed) group:
#      dwarn_ckpt_misses_total == 12, hits == 60, fallbacks == 0.
#   3. A second invocation against the same -ckpt-dir forks every cell
#      (misses == 0) and still matches the reference digests.
#
# Usage: scripts/smoke_ckpt.sh   (or `make smoke-ckpt`)
set -eu

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

spec="examples/specs/parallel-grid.json"
go build -o "$tmp/smtsim" ./cmd/smtsim

digests() { grep '^[a-z].* digest=' "$1" | sort; }

# metric FILE NAME → value (counters print as integers; 0 if absent).
metric() {
    awk -v name="$2" '$1 == name { print $2; found = 1 } END { if (!found) print 0 }' "$1"
}

echo "smoke_ckpt: serial reference run (checkpointing off)..."
"$tmp/smtsim" -spec "$spec" -parallel 1 -ckpt=false > "$tmp/serial.out"
digests "$tmp/serial.out" > "$tmp/serial.digests"
n="$(wc -l < "$tmp/serial.digests")"
if [ "$n" -ne 72 ]; then
    echo "smoke_ckpt: FAIL: serial run printed $n digest lines, want 72" >&2
    exit 1
fi

echo "smoke_ckpt: checkpointed parallel run (fresh -ckpt-dir)..."
"$tmp/smtsim" -spec "$spec" -parallel 8 -ckpt-dir "$tmp/ckpt" \
    -metrics "$tmp/warm.prom" > "$tmp/warm.out"
digests "$tmp/warm.out" > "$tmp/warm.digests"
if ! cmp -s "$tmp/serial.digests" "$tmp/warm.digests"; then
    echo "smoke_ckpt: FAIL: checkpointed digests diverge from serial reference:" >&2
    diff "$tmp/serial.digests" "$tmp/warm.digests" >&2 || true
    exit 1
fi

misses="$(metric "$tmp/warm.prom" dwarn_ckpt_misses_total)"
hits="$(metric "$tmp/warm.prom" dwarn_ckpt_hits_total)"
fallbacks="$(metric "$tmp/warm.prom" dwarn_ckpt_fallbacks_total)"
if [ "$misses" -ne 12 ] || [ "$hits" -ne 60 ] || [ "$fallbacks" -ne 0 ]; then
    echo "smoke_ckpt: FAIL: warm pass counters misses=$misses hits=$hits fallbacks=$fallbacks, want 12/60/0" >&2
    exit 1
fi
files="$(ls "$tmp/ckpt"/*.ckpt 2>/dev/null | wc -l)"
if [ "$files" -ne 12 ]; then
    echo "smoke_ckpt: FAIL: $files checkpoint files on disk, want 12 (one per group)" >&2
    exit 1
fi

echo "smoke_ckpt: re-run against the populated -ckpt-dir..."
"$tmp/smtsim" -spec "$spec" -parallel 8 -ckpt-dir "$tmp/ckpt" \
    -metrics "$tmp/fork.prom" > "$tmp/fork.out"
digests "$tmp/fork.out" > "$tmp/fork.digests"
if ! cmp -s "$tmp/serial.digests" "$tmp/fork.digests"; then
    echo "smoke_ckpt: FAIL: all-fork digests diverge from serial reference" >&2
    exit 1
fi
misses2="$(metric "$tmp/fork.prom" dwarn_ckpt_misses_total)"
hits2="$(metric "$tmp/fork.prom" dwarn_ckpt_hits_total)"
if [ "$misses2" -ne 0 ] || [ "$hits2" -ne 72 ]; then
    echo "smoke_ckpt: FAIL: fork pass counters misses=$misses2 hits=$hits2, want 0/72" >&2
    exit 1
fi

echo "smoke_ckpt: PASS — 72/72 digests bit-identical, 12 warmups (one per group), 132 forks across both passes"
