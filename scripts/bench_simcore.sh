#!/bin/sh
# bench_simcore.sh — record the cycle engine's perf trajectory.
#
# Runs BenchmarkSimulatorCycleRate (the number every experiment, sweep,
# and service request bottoms out in) and writes BENCH_simcore.json with
# ns/cycle, committed uops/sec, uops/cycle, and allocs+bytes per cycle
# for each workload, so future PRs can diff the engine's perf curve
# instead of eyeballing bench output.
#
# Usage:
#   scripts/bench_simcore.sh [output.json]
#   BENCHTIME=300000x scripts/bench_simcore.sh
#
# (or `make bench-simcore`)
set -eu

out="${1:-BENCH_simcore.json}"
benchtime="${BENCHTIME:-100000x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkSimulatorCycleRate' -benchmem \
    -benchtime "$benchtime" -count 1 . | tee "$raw"

awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^BenchmarkSimulatorCycleRate\// {
    # BenchmarkSimulatorCycleRate/4-MIX-8  N  1327 ns/op  0.81 uops/cycle  612345 uops/sec  2 B/op  0 allocs/op
    split($1, path, "/")
    wl = path[2]
    sub(/-[0-9]+$/, "", wl)   # strip -GOMAXPROCS
    delete m
    for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
    names[n] = wl
    ns[n]     = m["ns/op"]
    upc[n]    = m["uops/cycle"]
    ups[n]    = m["uops/sec"]
    allocs[n] = m["allocs/op"]
    bytes[n]  = m["B/op"]
    n++
}
END {
    if (n == 0) { print "bench_simcore: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkSimulatorCycleRate\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"workloads\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": {\n", names[i]
        printf "      \"ns_per_cycle\": %s,\n", ns[i]
        printf "      \"uops_per_cycle\": %s,\n", upc[i]
        printf "      \"uops_per_sec\": %s,\n", ups[i]
        printf "      \"allocs_per_cycle\": %s,\n", allocs[i]
        printf "      \"bytes_per_cycle\": %s\n", bytes[i]
        printf "    }%s\n", (i < n - 1 ? "," : "")
    }
    printf "  }\n}\n"
}' "$raw" > "$out"

echo "bench_simcore: wrote $out"
