#!/bin/sh
# bench_ckpt.sh — record the checkpoint/fork engine's sweep speedup.
#
# Times the 72-cell examples/specs/parallel-grid.json (12 checkpoint
# groups of 6 policy cells each) through smtsim twice — checkpointing
# off, then on (in-memory store) — and writes BENCH_ckpt.json with
# cells/sec for both modes, the speedup, and the fraction of the
# no-checkpoint wall time the fork path recovered. Warmup construction
# (generator calibration plus cache prewarming) is per-cell work without
# checkpointing and per-group work with it, so the speedup grows with
# group width and shrinks as measured cycles dominate. GOMAXPROCS is
# recorded alongside; a single-core runner is marked degraded because
# the parallel fan-out the grid normally overlaps warmups with is
# serialized there.
#
# Usage:
#   scripts/bench_ckpt.sh [output.json]
#   PARALLEL=4 scripts/bench_ckpt.sh
#
# (or `make bench-ckpt`)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_ckpt.json}"
parallel="${PARALLEL:-8}"
spec="examples/specs/parallel-grid.json"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/smtsim" ./cmd/smtsim
maxprocs="$(go run ./scripts/maxprocs 2>/dev/null || echo 0)"

degraded=false
if [ "$maxprocs" -le 1 ]; then
    degraded=true
    echo "bench_ckpt: WARNING: GOMAXPROCS=$maxprocs — warmups cannot overlap on a" >&2
    echo "bench_ckpt: WARNING: single-core runner; results marked degraded" >&2
fi

cells=72

run_grid() { # run_grid extra-flags... → elapsed seconds on stdout
    t0="$(date +%s.%N)"
    "$tmp/smtsim" -spec "$spec" -parallel "$parallel" "$@" > /dev/null 2>&1
    t1="$(date +%s.%N)"
    awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }'
}

echo "bench_ckpt: timing $cells-cell grid without checkpointing (parallel=$parallel)..."
t_off="$(run_grid -ckpt=false)"
echo "bench_ckpt: cold grid: ${t_off}s"

echo "bench_ckpt: timing the same grid with the checkpoint/fork engine..."
t_on="$(run_grid -metrics "$tmp/ckpt.prom")"
echo "bench_ckpt: checkpointed grid: ${t_on}s"

misses="$(awk '$1 == "dwarn_ckpt_misses_total" { print $2 }' "$tmp/ckpt.prom")"
hits="$(awk '$1 == "dwarn_ckpt_hits_total" { print $2 }' "$tmp/ckpt.prom")"
if [ "${misses:-0}" -ne 12 ]; then
    echo "bench_ckpt: FAIL: $misses warmups executed, want 12 (one per group)" >&2
    exit 1
fi

awk -v cells="$cells" -v t_off="$t_off" -v t_on="$t_on" \
    -v misses="$misses" -v hits="$hits" \
    -v parallel="$parallel" -v maxprocs="$maxprocs" -v degraded="$degraded" '
BEGIN {
    printf "{\n"
    printf "  \"spec\": \"examples/specs/parallel-grid.json\",\n"
    printf "  \"grid_cells\": %d,\n", cells
    printf "  \"ckpt_groups\": %d,\n", misses
    printf "  \"parallel\": %d,\n", parallel
    printf "  \"gomaxprocs\": %d,\n", maxprocs
    printf "  \"degraded\": %s,\n", degraded
    printf "  \"warmups_executed\": %d,\n", misses
    printf "  \"cells_forked\": %d,\n", hits
    printf "  \"cells_per_sec\": {\n"
    printf "    \"ckpt_off\": %.2f,\n", cells / t_off
    printf "    \"ckpt_on\": %.2f\n", cells / t_on
    printf "  },\n"
    printf "  \"speedup\": %.2f,\n", t_off / t_on
    printf "  \"warmup_time_recovered\": %.3f\n", (t_off - t_on) / t_off
    printf "}\n"
}' > "$out"

echo "bench_ckpt: wrote $out"
