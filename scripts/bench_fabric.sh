#!/bin/sh
# bench_fabric.sh — record distributed-fabric sweep throughput.
#
# End-to-end, multi-process: for each worker count N in 1/2/4, start a
# pure-coordinator dwarnd (-fabric-local-workers 0) plus N separate
# `dwarnd -worker` processes, submit the 72-cell examples/specs/
# parallel-grid.json sweep over HTTP, and time submit→done. Each round
# uses a fresh result store, so every cell is simulated, not cached.
# Writes BENCH_fabric.json with cells/sec per worker-process count and
# the 1→4-process speedup.
#
# The speedup is bounded by the host's cores: on a single-core runner
# the N-process rates collapse to the serial rate (the processes time-
# slice one CPU) and the recorded speedup is meaningless as a baseline
# — the output is marked degraded, matching bench_sweep.sh.
#
# Usage:
#   scripts/bench_fabric.sh [output.json]   (or `make bench-fabric`)
set -eu

out="${1:-BENCH_fabric.json}"
spec="examples/specs/parallel-grid.json"
port="${BENCH_FABRIC_PORT:-18473}"
base="http://127.0.0.1:$port"

work="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "bench_fabric: building dwarnd" >&2
go build -o "$work/dwarnd" ./cmd/dwarnd
jq .sweep "$spec" > "$work/sweep.json"
total="$(jq '.sweep | (.policies | length) * (.workloads | length) * (if .seeds then (.seeds | length) else 1 end)' "$spec")"

maxprocs="$(go run ./scripts/maxprocs 2>/dev/null || echo 0)"
degraded=false
if [ "$maxprocs" -le 1 ]; then
    degraded=true
    echo "bench_fabric: WARNING: GOMAXPROCS=$maxprocs — N worker processes time-slice" >&2
    echo "bench_fabric: WARNING: one core; speedup is meaningless here; results marked degraded" >&2
fi

wait_http() { # url: poll until it answers
    i=0
    until curl -sf "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "bench_fabric: $1 never came up" >&2; exit 1; }
        sleep 0.1
    done
}

run_round() { # $1 = worker process count; prints elapsed seconds
    n="$1"
    store="$work/store-$n"
    "$work/dwarnd" -addr "127.0.0.1:$port" -store "$store" \
        -fabric-local-workers 0 -max-cycles -1 -log-level error &
    coord=$!
    pids="$pids $coord"
    wait_http "$base/healthz"

    wpids=""
    i=0
    while [ "$i" -lt "$n" ]; do
        "$work/dwarnd" -worker -coordinator "$base" -store "$store" \
            -worker-capacity 1 -worker-name "bench-$i" -log-level error &
        wpids="$wpids $!"
        i=$((i + 1))
    done
    pids="$pids $wpids"

    id="$(curl -sf -X POST "$base/v2/sweeps" -d @"$work/sweep.json" | jq -r .id)"
    start="$(date +%s.%N)"
    state=running
    while [ "$state" = running ]; do
        sleep 0.2
        state="$(curl -sf "$base/v2/sweeps/$id" | jq -r .state)"
    done
    end="$(date +%s.%N)"
    [ "$state" = done ] || { echo "bench_fabric: sweep ended in state $state" >&2; exit 1; }

    kill $wpids $coord 2>/dev/null || true
    wait $wpids $coord 2>/dev/null || true
    awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }'
}

rates=""
for n in 1 2 4; do
    echo "bench_fabric: round: $n worker process(es)" >&2
    secs="$(run_round "$n")"
    rate="$(awk -v t="$total" -v s="$secs" 'BEGIN { printf "%.2f", t / s }')"
    echo "bench_fabric: $n worker(s): $total cells in ${secs}s = $rate cells/sec" >&2
    rates="$rates $n:$rate"
done

{
    printf '{\n'
    printf '  "benchmark": "fabric_sweep_72_cells",\n'
    printf '  "spec": "%s",\n' "$spec"
    printf '  "grid_cells": %d,\n' "$total"
    printf '  "worker_capacity": 1,\n'
    printf '  "gomaxprocs": %d,\n' "$maxprocs"
    printf '  "degraded": %s,\n' "$degraded"
    printf '  "cells_per_sec": {\n'
    first=true
    for kv in $rates; do
        n="${kv%%:*}"; r="${kv#*:}"
        $first || printf ',\n'
        first=false
        printf '    "worker_processes_%s": %s' "$n" "$r"
    done
    printf '\n  },\n'
    r1=""; r4=""
    for kv in $rates; do
        case "${kv%%:*}" in
            1) r1="${kv#*:}" ;;
            4) r4="${kv#*:}" ;;
        esac
    done
    if [ -n "$r1" ] && [ -n "$r4" ]; then
        awk -v a="$r1" -v b="$r4" 'BEGIN { printf "  \"speedup_4_workers\": %.2f\n", b / a }'
    else
        printf '  "speedup_4_workers": null\n'
    fi
    printf '}\n'
} > "$out"

echo "bench_fabric: wrote $out"
