#!/bin/sh
# bench_service.sh — record dwarnd end-to-end service throughput/latency.
#
# Starts a real dwarnd and measures the full HTTP round trip of single
# runs — POST /v1/simulations, then poll to terminal state — at three
# client concurrency levels, in two modes:
#
#   cold: every request carries a fresh seed, so every run simulates
#   hot:  every request is identical, so all but the first are served
#         from the content-addressed result cache
#
# Writes BENCH_service.json with runs/sec and p99 submit→done latency
# per (mode, concurrency). Hot-mode latency is bounded below by the
# client's 10ms poll interval; the numbers are a service-level
# trajectory, not a microbenchmark.
#
# On a single-core runner concurrent clients time-slice one CPU and the
# concurrency scaling is meaningless; the output is marked degraded,
# matching bench_sweep.sh.
#
# Usage:
#   scripts/bench_service.sh [output.json]   (or `make bench-service`)
set -eu

out="${1:-BENCH_service.json}"
port="${BENCH_SERVICE_PORT:-18571}"
base="http://127.0.0.1:$port"
reqs=32 # requests per (mode, concurrency) round
warmup=2000
measure=5000

work="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "bench_service: building dwarnd" >&2
go build -o "$work/dwarnd" ./cmd/dwarnd

maxprocs="$(go run ./scripts/maxprocs 2>/dev/null || echo 0)"
degraded=false
if [ "$maxprocs" -le 1 ]; then
    degraded=true
    echo "bench_service: WARNING: GOMAXPROCS=$maxprocs — concurrent clients" >&2
    echo "bench_service: WARNING: time-slice one core; results marked degraded" >&2
fi

"$work/dwarnd" -addr "127.0.0.1:$port" -max-cycles -1 -queue 512 -log-level error &
pids="$pids $!"
i=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "bench_service: dwarnd never came up" >&2; exit 1; }
    sleep 0.1
done

one_request() { # $1 = seed; appends submit→done latency (ms) to $2
    t0="$(date +%s.%N)"
    id="$(curl -sf -X POST "$base/v1/simulations" -d "{
        \"policy\": \"dwarn\", \"workload\": \"2-MIX\", \"seed\": $1,
        \"warmup_cycles\": $warmup, \"measure_cycles\": $measure}" | jq -r .id)"
    state=queued
    while [ "$state" = queued ] || [ "$state" = running ]; do
        state="$(curl -sf "$base/v1/simulations/$id" | jq -r .state)"
        [ "$state" = queued ] || [ "$state" = running ] && sleep 0.01
    done
    t1="$(date +%s.%N)"
    [ "$state" = done ] || { echo "bench_service: job $id ended $state" >&2; exit 1; }
    awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f\n", (b - a) * 1000 }' >> "$2"
}

run_round() { # $1 = mode (cold|hot), $2 = concurrency, $3 = seed base; prints "rps p99"
    mode="$1" conc="$2" seedbase="$3"
    lat="$work/lat-$mode-$conc"
    : > "$lat"
    per=$((reqs / conc))
    start="$(date +%s.%N)"
    w=0
    wpids=""
    while [ "$w" -lt "$conc" ]; do
        (
            k=0
            while [ "$k" -lt "$per" ]; do
                if [ "$mode" = cold ]; then
                    seed=$((seedbase + w * 1000 + k + 1))
                else
                    seed=1
                fi
                one_request "$seed" "$lat"
                k=$((k + 1))
            done
        ) &
        wpids="$wpids $!"
        w=$((w + 1))
    done
    for p in $wpids; do wait "$p"; done
    end="$(date +%s.%N)"
    total=$((per * conc))
    rps="$(awk -v n="$total" -v a="$start" -v b="$end" 'BEGIN { printf "%.2f", n / (b - a) }')"
    p99="$(sort -n "$lat" | awk '{ v[NR] = $1 } END { print v[int(0.99 * (NR - 1)) + 1] }')"
    echo "$rps $p99"
}

rows=""
sb=0
for mode in cold hot; do
    for conc in 1 4 8; do
        echo "bench_service: round: $mode, $conc client(s)" >&2
        set -- $(run_round "$mode" "$conc" "$sb")
        echo "bench_service: $mode x$conc: $1 runs/sec, p99 ${2}ms" >&2
        rows="$rows $mode:$conc:$1:$2"
        sb=$((sb + 10000))
    done
done

{
    printf '{\n'
    printf '  "benchmark": "service_run_roundtrip",\n'
    printf '  "requests_per_round": %d,\n' "$reqs"
    printf '  "warmup_cycles": %d,\n' "$warmup"
    printf '  "measure_cycles": %d,\n' "$measure"
    printf '  "gomaxprocs": %d,\n' "$maxprocs"
    printf '  "degraded": %s,\n' "$degraded"
    printf '  "rounds": [\n'
    first=true
    for row in $rows; do
        mode="${row%%:*}"; rest="${row#*:}"
        conc="${rest%%:*}"; rest="${rest#*:}"
        rps="${rest%%:*}"; p99="${rest#*:}"
        $first || printf ',\n'
        first=false
        printf '    {"mode": "%s", "clients": %s, "runs_per_sec": %s, "p99_ms": %s}' \
            "$mode" "$conc" "$rps" "$p99"
    done
    printf '\n  ]\n'
    printf '}\n'
} > "$out"

echo "bench_service: wrote $out"
