#!/bin/sh
# bench_sweep.sh — record the execution layer's sweep throughput.
#
# Runs BenchmarkSweepExecutor (a fixed 64-cell grid through
# internal/exec at 1/2/4/8 workers) and writes BENCH_sweep.json with
# cells/sec per worker count plus the serial→8-worker speedup, so
# future PRs can diff sweep throughput the way BENCH_simcore.json
# tracks the cycle engine. GOMAXPROCS is recorded alongside: the
# speedup is bounded by the host's cores (a single-core runner shows
# ~1.0x regardless of workers).
#
# Usage:
#   scripts/bench_sweep.sh [output.json]
#   BENCHTIME=3x scripts/bench_sweep.sh
#
# (or `make bench-sweep`)
set -eu

out="${1:-BENCH_sweep.json}"
benchtime="${BENCHTIME:-1x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkSweepExecutor' \
    -benchtime "$benchtime" -count 1 ./internal/exec | tee "$raw"

maxprocs="$(go run ./scripts/maxprocs 2>/dev/null || echo 0)"

# A single-core runner cannot show parallel speedup: the 1..8-worker
# rates all collapse to the serial rate and the recorded speedup is
# meaningless as a regression baseline. Say so loudly and mark the
# output so downstream diffs know to ignore it.
degraded=false
if [ "$maxprocs" -le 1 ]; then
    degraded=true
    echo "bench_sweep: WARNING: GOMAXPROCS=$maxprocs — parallel speedup is" >&2
    echo "bench_sweep: WARNING: meaningless on a single-core runner; results marked degraded" >&2
fi

awk -v benchtime="$benchtime" -v maxprocs="$maxprocs" -v degraded="$degraded" '
BEGIN { n = 0 }
/^BenchmarkSweepExecutor\/workers-/ {
    # BenchmarkSweepExecutor/workers-4-8  N  123456 ns/op  64.00 cells  129.3 cells/sec
    split($1, path, "/")
    w = path[2]
    sub(/^workers-/, "", w)
    sub(/-[0-9]+$/, "", w)   # strip -GOMAXPROCS
    delete m
    for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
    workers[n]  = w
    rate[n]     = m["cells/sec"]
    cells[n]    = m["cells"]
    n++
}
END {
    if (n == 0) { print "bench_sweep: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    serial = 0; best8 = 0
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkSweepExecutor\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"gomaxprocs\": %d,\n", maxprocs
    printf "  \"degraded\": %s,\n", degraded
    printf "  \"grid_cells\": %d,\n", cells[0]
    printf "  \"cells_per_sec\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"workers_%s\": %s%s\n", workers[i], rate[i], (i < n - 1 ? "," : "")
        if (workers[i] == "1") serial = rate[i]
        if (workers[i] == "8") best8 = rate[i]
    }
    printf "  },\n"
    if (serial > 0 && best8 > 0)
        printf "  \"speedup_8_workers\": %.2f\n", best8 / serial
    else
        printf "  \"speedup_8_workers\": null\n"
    printf "}\n"
}' "$raw" > "$out"

echo "bench_sweep: wrote $out"
