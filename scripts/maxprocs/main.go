// Command maxprocs prints runtime.GOMAXPROCS(0) — the parallelism
// bound scripts/bench_sweep.sh records next to its speedup numbers so
// a flat curve on a small machine is attributable.
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Println(runtime.GOMAXPROCS(0))
}
