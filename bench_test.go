// Benchmarks regenerating every table and figure of the paper, plus
// microbenchmarks of the simulator itself.
//
// Each Benchmark<Artifact> runs the corresponding experiment end to end
// per iteration (with shortened warmup/measure windows so `go test
// -bench=.` completes quickly) and reports headline numbers via
// b.ReportMetric. For publication-quality runs use cmd/experiments,
// which uses the full protocol.
package dwarn_test

import (
	"strconv"
	"testing"

	"dwarn"
	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/exp"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// benchConfig is the shortened protocol used per benchmark iteration.
func benchConfig() exp.Config {
	return exp.Config{WarmupCycles: 10_000, MeasureCycles: 20_000}
}

// runExperiment executes one experiment per iteration; a fresh Runner
// each time so the work is not memoised away.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchConfig())
		if _, err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2aCacheBehaviour regenerates Table 2(a): isolated
// per-benchmark L1/L2 load miss rates.
func BenchmarkTable2aCacheBehaviour(b *testing.B) { runExperiment(b, "table2a") }

// BenchmarkFig1aThroughput regenerates Figure 1(a): absolute throughput
// for all six policies over the twelve workloads.
func BenchmarkFig1aThroughput(b *testing.B) { runExperiment(b, "fig1a") }

// BenchmarkFig1bImprovement regenerates Figure 1(b): DWarn's throughput
// improvement over each policy.
func BenchmarkFig1bImprovement(b *testing.B) { runExperiment(b, "fig1b") }

// BenchmarkFig2FlushedInstructions regenerates Figure 2: instructions
// squashed by FLUSH as a share of fetched instructions.
func BenchmarkFig2FlushedInstructions(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3Hmean regenerates Figure 3: DWarn's Hmean improvement.
func BenchmarkFig3Hmean(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkTable4RelativeIPC regenerates Table 4: per-thread relative
// IPCs in 4-MIX.
func BenchmarkTable4RelativeIPC(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig4SmallArch regenerates Figure 4: the 4-wide 1.4-fetch
// machine.
func BenchmarkFig4SmallArch(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5DeepArch regenerates Figure 5: the 16-stage machine.
func BenchmarkFig5DeepArch(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkAblateL2Threshold sweeps STALL/FLUSH's L2-declaration
// threshold (DESIGN.md ablation A1).
func BenchmarkAblateL2Threshold(b *testing.B) { runExperiment(b, "ablate-threshold") }

// BenchmarkAblateDGThreshold sweeps DG's gate threshold (ablation A2).
func BenchmarkAblateDGThreshold(b *testing.B) { runExperiment(b, "ablate-dg") }

// BenchmarkAblateDWarnHybrid compares hybrid DWarn against
// prioritisation-only (ablation A3).
func BenchmarkAblateDWarnHybrid(b *testing.B) { runExperiment(b, "ablate-hybrid") }

// BenchmarkPolicyThroughput4MIX reports each policy's steady-state
// throughput on 4-MIX as a metric (IPC), one sub-benchmark per policy.
func BenchmarkPolicyThroughput4MIX(b *testing.B) {
	wl, err := dwarn.Workload("4-MIX")
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range dwarn.PaperPolicies() {
		b.Run(pol, func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				res, err := dwarn.Run(dwarn.Options{
					Policy: pol, Workload: wl,
					WarmupCycles: 10_000, MeasureCycles: 20_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				thr = res.Throughput
			}
			b.ReportMetric(thr, "IPC")
		})
	}
}

// BenchmarkSimulatorCycleRate measures raw simulation speed per thread
// count, the number that bounds every experiment above. Besides the
// stock ns/op (= ns/cycle) it reports committed uops/sec and, with
// -benchmem, allocations per cycle — the zero-alloc engine's headline
// numbers. scripts/bench_simcore.sh records them to BENCH_simcore.json
// so the perf trajectory is tracked across changes.
func BenchmarkSimulatorCycleRate(b *testing.B) {
	for _, wn := range []string{"2-MIX", "4-MIX", "8-MEM"} {
		b.Run(wn, func(b *testing.B) {
			wl, _ := workload.GetWorkload(wn)
			gens, _ := wl.Generators(42)
			cpu, err := pipeline.New(config.Baseline(), core.NewICOUNT(), gens)
			if err != nil {
				b.Fatal(err)
			}
			cpu.Run(5000) // warm
			committed := func() uint64 {
				var sum uint64
				for t := 0; t < cpu.NumThreads(); t++ {
					sum += cpu.ThreadStats(t).Committed
				}
				return sum
			}
			before := committed()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cpu.Step()
			}
			b.StopTimer()
			delta := float64(committed() - before)
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(delta/secs, "uops/sec")
			}
			b.ReportMetric(delta/float64(b.N), "uops/cycle")
		})
	}
}

// BenchmarkGenerator measures synthetic trace generation speed.
func BenchmarkGenerator(b *testing.B) {
	for _, name := range []string{"gzip", "mcf"} {
		b.Run(name, func(b *testing.B) {
			g := workload.NewGenerator(workload.MustGet(name), 42, 1<<40)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Next()
			}
		})
	}
}

// BenchmarkGeneratorConstruction measures program synthesis +
// calibration cost (dry runs included).
func BenchmarkGeneratorConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.NewGenerator(workload.MustGet("gcc"), uint64(i)+1, 1<<40)
	}
}

// BenchmarkThreadScaling reports throughput across MEM thread counts
// under DWarn (the paper's scaling axis).
func BenchmarkThreadScaling(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		b.Run(strconv.Itoa(n)+"-MEM", func(b *testing.B) {
			wl, err := dwarn.Workload(strconv.Itoa(n) + "-MEM")
			if err != nil {
				b.Fatal(err)
			}
			var thr float64
			for i := 0; i < b.N; i++ {
				res, err := dwarn.Run(dwarn.Options{
					Policy: "dwarn", Workload: wl,
					WarmupCycles: 10_000, MeasureCycles: 20_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				thr = res.Throughput
			}
			b.ReportMetric(thr, "IPC")
		})
	}
}
